(* F4 — Latency percentiles vs offered load (open loop).
   The serving bottleneck in this simulation is the leader's egress link
   (there is no CPU model), so the knee is where per-command leader egress
   saturates the configured uplink. *)

module Rng = Rsmr_sim.Rng
module Engine = Rsmr_sim.Engine
module Histogram = Rsmr_sim.Histogram
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen
module Driver = Rsmr_workload.Driver

let id = "F4"
let title = "Latency vs offered load (open loop, core protocol)"
let bandwidth = 5e5 (* 4 Mb/s uplinks: saturates around 4k cmd/s *)

let run_one ~rate ~duration =
  let members = [ 0; 1; 2 ] in
  let setup =
    Common.make ~seed:37 ~bandwidth Common.Core ~members ~universe:members
  in
  let rng = Rng.split (Engine.rng setup.Common.engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.uniform ~n:1_000) ~read_ratio:0.5 () in
  let stats =
    Driver.run_open ~cluster:setup.Common.cluster ~n_clients:16
      ~first_client_id:100
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~rate ~start:1.0 ~duration ()
  in
  Common.run_to setup (1.0 +. duration +. 5.0);
  let goodput = float_of_int stats.Driver.completed /. duration in
  ( goodput,
    Histogram.percentile stats.Driver.latency 50.0,
    Histogram.percentile stats.Driver.latency 99.0 )

let run ?(quick = false) () =
  let duration = if quick then 2.0 else 5.0 in
  let rates =
    if quick then [ 200.0; 1000.0 ]
    else [ 250.0; 500.0; 1000.0; 2000.0; 4000.0; 6000.0 ]
  in
  let rows =
    List.map
      (fun rate ->
        let goodput, p50, p99 = run_one ~rate ~duration in
        [
          Table.cell_f rate;
          Table.cell_f goodput;
          Table.cell_ms p50;
          Table.cell_ms p99;
        ])
      rates
  in
  Table.make ~id ~title
    ~headers:[ "offered req/s"; "goodput/s"; "p50"; "p99" ]
    ~notes:
      [
        "3 replicas; 4 Mb/s uplinks are the bottleneck resource";
        "expected shape: flat latency until the knee, then p99 explodes \
         first and goodput plateaus";
      ]
    rows
