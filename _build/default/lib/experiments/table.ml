type t = {
  id : string;
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~headers ?(notes = []) rows =
  { id; title; headers; rows; notes }

let cell_f v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else if Float.abs v >= 0.1 then Printf.sprintf "%.2f" v
  else if v = 0.0 then "0"
  else Printf.sprintf "%.4f" v

let cell_ms v =
  if Float.is_nan v then "-" else Printf.sprintf "%sms" (cell_f (v *. 1e3))

let print t =
  let all = t.headers :: t.rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)))
    all;
  let render row =
    row
    |> List.mapi (fun i c -> Printf.sprintf "%-*s" widths.(i) c)
    |> String.concat "  "
  in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Printf.printf "\n== %s: %s ==\n" t.id t.title;
  print_endline (render t.headers);
  print_endline rule;
  List.iter (fun r -> print_endline (render r)) t.rows;
  List.iter (fun n -> Printf.printf "  note: %s\n" n) t.notes;
  print_newline ()
