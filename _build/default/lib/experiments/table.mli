(** Plain-text result tables, one per reproduced figure/table. *)

type t = {
  id : string;  (** experiment id, e.g. "F2" *)
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

val make :
  id:string -> title:string -> headers:string list ->
  ?notes:string list -> string list list -> t

val print : t -> unit
(** Render to stdout with aligned columns. *)

val cell_f : float -> string
(** Format a float compactly ("3.1", "0.004", "1250"). *)

val cell_ms : float -> string
(** Seconds rendered as milliseconds with unit. *)
