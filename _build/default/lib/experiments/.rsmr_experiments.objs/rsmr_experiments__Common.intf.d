lib/experiments/common.mli: Rsmr_app Rsmr_iface Rsmr_net Rsmr_sim Rsmr_workload
