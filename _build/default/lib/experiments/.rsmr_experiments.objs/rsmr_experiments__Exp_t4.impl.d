lib/experiments/exp_t4.ml: Common List Rsmr_iface Rsmr_sim Rsmr_workload Table
