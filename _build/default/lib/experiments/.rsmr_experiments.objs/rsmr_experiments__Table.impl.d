lib/experiments/table.ml: Array Float List Printf String
