lib/experiments/exp_t1.ml: Common List Rsmr_app Rsmr_iface Rsmr_sim Rsmr_workload Table
