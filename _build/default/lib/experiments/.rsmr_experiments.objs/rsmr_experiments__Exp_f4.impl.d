lib/experiments/exp_f4.ml: Common List Rsmr_sim Rsmr_workload Table
