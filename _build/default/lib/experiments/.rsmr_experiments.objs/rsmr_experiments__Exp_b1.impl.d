lib/experiments/exp_b1.ml: List Printf Rsmr_app Rsmr_core Rsmr_iface Rsmr_sim Rsmr_smr Rsmr_workload Table
