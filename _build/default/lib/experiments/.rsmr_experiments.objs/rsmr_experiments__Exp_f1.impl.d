lib/experiments/exp_f1.ml: Common List Rsmr_sim Rsmr_workload Table
