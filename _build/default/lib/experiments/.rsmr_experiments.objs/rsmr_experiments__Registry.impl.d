lib/experiments/registry.ml: Exp_b1 Exp_f1 Exp_f2 Exp_f3 Exp_f4 Exp_f5 Exp_t1 Exp_t2 Exp_t3 Exp_t4 List String Table
