lib/experiments/registry.mli: Table
