lib/experiments/exp_f3.ml: Common Hashtbl List Rsmr_sim Rsmr_workload Table
