lib/experiments/exp_t3.ml: Common Float List Rsmr_iface Rsmr_sim Rsmr_workload Table
