lib/experiments/common.ml: Float Fun List Rsmr_app Rsmr_baselines Rsmr_core Rsmr_iface Rsmr_net Rsmr_sim Rsmr_smr Rsmr_workload
