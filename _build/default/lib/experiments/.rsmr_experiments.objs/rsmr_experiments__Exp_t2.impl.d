lib/experiments/exp_t2.ml: Common Float List Printf Rsmr_sim Rsmr_workload Table
