lib/experiments/exp_f2.ml: Common List Printf Rsmr_sim Rsmr_workload Table
