lib/experiments/exp_f5.ml: Common List Printf Rsmr_app Rsmr_core Rsmr_sim Rsmr_workload Table
