lib/experiments/table.mli:
