(** The experiment suite: one entry per reproduced table/figure. *)

type entry = {
  id : string;
  title : string;
  run : ?quick:bool -> unit -> Table.t;
}

val all : entry list
val find : string -> entry option
(** Case-insensitive lookup by id ("f2", "T1", ...). *)
