(** Single monotone counter — the smallest useful state machine; used by
    the quickstart example and exactly-once (deduplication) tests, where a
    doubly-applied increment is immediately visible. *)

type command = Incr of int | Read
type response = Current of int

include
  State_machine.S with type command := command and type response := response

val value : t -> int
