(** Key-value store state machine — the workhorse application for the
    benchmarks (stands in for FRAPPE's elastic services). *)

type command =
  | Get of string
  | Put of string * string
  | Delete of string
  | Cas of string * string option * string
      (** [Cas (k, expected, v)]: write [v] iff current value = expected. *)
  | Append of string * string

type response =
  | Value of string option
  | Ok
  | Cas_result of bool

include
  State_machine.S with type command := command and type response := response

val cardinal : t -> int
(** Number of live keys — used by state-size sweeps. *)

val find : t -> string -> string option
(** Direct lookup, for tests. *)
