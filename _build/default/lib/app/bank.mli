(** Bank of accounts with money-conserving transfers.  The invariant "sum
    of balances is constant" makes lost or duplicated commands show up in
    property tests even when individual responses look plausible. *)

type command =
  | Open of string * int      (** account, initial balance *)
  | Transfer of string * string * int
  | Balance of string
  | Total

type response =
  | Ok
  | Insufficient
  | No_account
  | Amount of int

include
  State_machine.S with type command := command and type response := response

val total : t -> int
