(** Single read/write/CAS register — the canonical object for
    linearizability checking (small state space keeps the checker fast). *)

type command = Read | Write of int | Cas of int * int
type response = Value of int | Written | Cas_result of bool

include
  State_machine.S with type command := command and type response := response
