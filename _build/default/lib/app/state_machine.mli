(** The deterministic state machine every protocol in this repository
    replicates.

    States are persistent (applying a command returns a new state), which
    keeps replicas cheap to snapshot and lets the linearizability checker
    branch its search without copying. *)

module type S = sig
  type t
  type command
  type response

  val name : string
  val init : unit -> t

  val apply : t -> command -> t * response
  (** Must be a pure function of (state, command). *)

  (** Wire encodings.  [decode_*] raise {!Codec.Truncated} on bad input. *)

  val encode_command : command -> string
  val decode_command : string -> command
  val encode_response : response -> string
  val decode_response : string -> response

  (** Snapshots, for state transfer between configurations. *)

  val snapshot : t -> string
  val restore : string -> t

  val equal_response : response -> response -> bool
  val pp_command : Format.formatter -> command -> unit
  val pp_response : Format.formatter -> response -> unit
end
