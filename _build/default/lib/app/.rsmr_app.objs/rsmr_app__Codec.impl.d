lib/app/codec.ml: Buffer Char Int64 List String
