lib/app/counter.ml: Codec Format
