lib/app/state_machine.mli: Format
