lib/app/bank.mli: State_machine
