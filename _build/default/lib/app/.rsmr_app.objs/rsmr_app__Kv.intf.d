lib/app/kv.mli: State_machine
