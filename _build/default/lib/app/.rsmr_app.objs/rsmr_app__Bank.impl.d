lib/app/bank.ml: Codec Format Map String
