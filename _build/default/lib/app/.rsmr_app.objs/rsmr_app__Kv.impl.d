lib/app/kv.ml: Codec Format Map Option String
