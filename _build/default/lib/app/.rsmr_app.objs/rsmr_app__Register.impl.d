lib/app/register.ml: Codec Format
