lib/app/register.mli: State_machine
