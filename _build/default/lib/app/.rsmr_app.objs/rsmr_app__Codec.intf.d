lib/app/codec.mli:
