lib/app/counter.mli: State_machine
