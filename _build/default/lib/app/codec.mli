(** Hand-rolled binary codec.

    All wire messages, command envelopes and snapshots go through this
    module, so byte counts reported by the benchmarks reflect a realistic
    serialization rather than [Marshal] internals.  Integers use LEB128
    varints; strings are length-prefixed. *)

exception Truncated
(** Raised by readers on malformed or short input. *)

module Writer : sig
  type t

  val create : ?size_hint:int -> unit -> t
  val u8 : t -> int -> unit
  val varint : t -> int -> unit
  (** Non-negative varint. *)

  val zigzag : t -> int -> unit
  (** Signed varint. *)

  val bool : t -> bool -> unit
  val float : t -> float -> unit
  val string : t -> string -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val contents : t -> string
  val length : t -> int
end

module Reader : sig
  type t

  val of_string : string -> t
  val u8 : t -> int
  val varint : t -> int
  val zigzag : t -> int
  val bool : t -> bool
  val float : t -> float
  val string : t -> string
  val option : t -> (t -> 'a) -> 'a option
  val list : t -> (t -> 'a) -> 'a list
  val at_end : t -> bool
end
