(** One-way link latency models. *)

type t =
  | Constant of float
  | Uniform of float * float      (** [lo, hi) seconds *)
  | Exponential_shifted of float * float
      (** base + Exp(mean): a floor plus a heavy-ish tail, the usual
          datacenter RPC shape *)

val sample : t -> Rsmr_sim.Rng.t -> float
val mean : t -> float
val lan : t
(** 0.1 ms floor + 0.15 ms exponential tail — same-rack default. *)

val wan : t
(** 20 ms floor + 5 ms exponential tail. *)

val pp : Format.formatter -> t -> unit
