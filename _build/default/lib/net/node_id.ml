type t = int

let compare = Int.compare
let equal = Int.equal
let pp ppf n = Format.fprintf ppf "n%d" n
let to_string n = "n" ^ string_of_int n

module Set = Set.Make (Int)
module Map = Map.Make (Int)
