lib/net/latency.ml: Format Rsmr_sim
