lib/net/network.mli: Latency Node_id Rsmr_sim
