lib/net/node_id.mli: Format Map Set
