lib/net/network.ml: Hashtbl Latency List Node_id Rsmr_sim
