lib/net/latency.mli: Format Rsmr_sim
