lib/net/node_id.ml: Format Int Map Set
