type t =
  | Constant of float
  | Uniform of float * float
  | Exponential_shifted of float * float

let sample t rng =
  match t with
  | Constant d -> d
  | Uniform (lo, hi) -> Rsmr_sim.Rng.uniform_in rng lo hi
  | Exponential_shifted (base, mean) ->
    base +. Rsmr_sim.Rng.exponential rng ~mean

let mean = function
  | Constant d -> d
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Exponential_shifted (base, mean) -> base +. mean

let lan = Exponential_shifted (1e-4, 1.5e-4)
let wan = Exponential_shifted (20e-3, 5e-3)

let pp ppf = function
  | Constant d -> Format.fprintf ppf "const(%.3gms)" (d *. 1e3)
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%.3g-%.3gms)" (lo *. 1e3) (hi *. 1e3)
  | Exponential_shifted (b, m) ->
    Format.fprintf ppf "exp(base=%.3gms,mean=%.3gms)" (b *. 1e3) (m *. 1e3)
