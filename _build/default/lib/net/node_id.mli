(** Node identities.  Both replicas and clients live in one id space so the
    network can route uniformly. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
