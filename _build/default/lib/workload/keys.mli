(** Key-popularity distributions for workload generation. *)

type t

val uniform : n:int -> t
(** Keys 0..n-1, equally likely. *)

val zipf : n:int -> theta:float -> t
(** Zipfian with skew [theta] (0 = uniform, ~0.99 = classic YCSB skew).
    Precomputes the CDF; sampling is O(log n). *)

val sample : t -> Rsmr_sim.Rng.t -> int
val key_name : int -> string
(** Canonical printable key for index i ("key00000042"). *)

val cardinality : t -> int
