(** Reconfiguration and failure schedules for experiments. *)

val at : Rsmr_iface.Cluster.t -> time:float -> (unit -> unit) -> unit
(** Run an arbitrary action at an absolute simulation time. *)

val reconfigure_at :
  Rsmr_iface.Cluster.t -> time:float -> Rsmr_net.Node_id.t list -> unit

val crash_at : Rsmr_iface.Cluster.t -> time:float -> Rsmr_net.Node_id.t -> unit
val recover_at : Rsmr_iface.Cluster.t -> time:float -> Rsmr_net.Node_id.t -> unit

val rolling_plan :
  universe:Rsmr_net.Node_id.t list ->
  size:int ->
  step:int ->
  Rsmr_net.Node_id.t list
(** [rolling_plan ~universe ~size ~step] is the member set after [step]
    single-position rotations through [universe]: step 0 is the first
    [size] nodes, each subsequent step drops the oldest member and adds the
    next unused node, wrapping around.  Gives an endless supply of distinct
    target configurations for churn experiments. *)

val periodic_reconfigure :
  Rsmr_iface.Cluster.t ->
  universe:Rsmr_net.Node_id.t list ->
  size:int ->
  start:float ->
  period:float ->
  count:int ->
  unit
(** Schedule [count] reconfigurations, [period] seconds apart, walking the
    {!rolling_plan}. *)
