module Engine = Rsmr_sim.Engine
module Cluster = Rsmr_iface.Cluster

let at (cluster : Cluster.t) ~time f =
  ignore (Engine.at cluster.Cluster.engine ~time f)

let reconfigure_at cluster ~time members =
  at cluster ~time (fun () -> cluster.Cluster.reconfigure members)

let crash_at cluster ~time node =
  at cluster ~time (fun () -> cluster.Cluster.crash node)

let recover_at cluster ~time node =
  at cluster ~time (fun () -> cluster.Cluster.recover node)

let rolling_plan ~universe ~size ~step =
  let n = List.length universe in
  if size > n then invalid_arg "Schedule.rolling_plan: size exceeds universe";
  let arr = Array.of_list universe in
  List.init size (fun i -> arr.((step + i) mod n))

let periodic_reconfigure cluster ~universe ~size ~start ~period ~count =
  for step = 1 to count do
    reconfigure_at cluster
      ~time:(start +. (float_of_int (step - 1) *. period))
      (rolling_plan ~universe ~size ~step)
  done
