type t = Uniform of int | Zipf of { n : int; cdf : float array }

let uniform ~n =
  if n <= 0 then invalid_arg "Keys.uniform: n must be positive";
  Uniform n

let zipf ~n ~theta =
  if n <= 0 then invalid_arg "Keys.zipf: n must be positive";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  Zipf { n; cdf }

let sample t rng =
  match t with
  | Uniform n -> Rsmr_sim.Rng.int rng n
  | Zipf { n; cdf } ->
    let u = Rsmr_sim.Rng.float rng 1.0 in
    (* Binary search for the first index with cdf >= u. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo

let key_name i = Printf.sprintf "key%08d" i
let cardinality = function Uniform n -> n | Zipf { n; _ } -> n
