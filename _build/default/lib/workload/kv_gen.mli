(** Encoded-command generators for the KV application (YCSB-style mixes). *)

type t

val create :
  rng:Rsmr_sim.Rng.t ->
  keys:Keys.t ->
  ?read_ratio:float ->
  ?value_size:int ->
  unit ->
  t
(** [read_ratio] defaults to 0.5; [value_size] to 64 bytes. *)

val next : t -> string
(** Next encoded command: Get with probability [read_ratio], else Put of a
    fresh value of [value_size] bytes. *)

val preload_commands : n_keys:int -> value_size:int -> string list
(** One encoded Put per key — used to install a state of a known size
    before an experiment. *)

val value_of_size : int -> seed:int -> string
