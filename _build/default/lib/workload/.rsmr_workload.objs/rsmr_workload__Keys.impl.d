lib/workload/keys.ml: Array Printf Rsmr_sim
