lib/workload/driver.mli: Rsmr_iface Rsmr_net Rsmr_sim
