lib/workload/schedule.ml: Array List Rsmr_iface Rsmr_sim
