lib/workload/driver.ml: Array Hashtbl List Option Printf Rsmr_iface Rsmr_net Rsmr_sim
