lib/workload/kv_gen.mli: Keys Rsmr_sim
