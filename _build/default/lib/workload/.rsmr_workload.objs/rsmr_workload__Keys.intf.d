lib/workload/keys.mli: Rsmr_sim
