lib/workload/kv_gen.ml: Char Keys List Rsmr_app Rsmr_sim String
