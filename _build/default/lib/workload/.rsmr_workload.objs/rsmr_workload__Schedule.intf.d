lib/workload/schedule.mli: Rsmr_iface Rsmr_net
