module Rng = Rsmr_sim.Rng
module Kv = Rsmr_app.Kv

type t = {
  rng : Rng.t;
  keys : Keys.t;
  read_ratio : float;
  value_size : int;
  mutable counter : int;
}

let create ~rng ~keys ?(read_ratio = 0.5) ?(value_size = 64) () =
  { rng; keys; read_ratio; value_size; counter = 0 }

let value_of_size size ~seed =
  String.init size (fun i -> Char.chr (97 + ((seed + i) mod 26)))

let next t =
  let key = Keys.key_name (Keys.sample t.keys t.rng) in
  if Rng.bernoulli t.rng t.read_ratio then Kv.encode_command (Kv.Get key)
  else begin
    t.counter <- t.counter + 1;
    Kv.encode_command (Kv.Put (key, value_of_size t.value_size ~seed:t.counter))
  end

let preload_commands ~n_keys ~value_size =
  List.init n_keys (fun i ->
      Kv.encode_command
        (Kv.Put (Keys.key_name i, value_of_size value_size ~seed:i)))
