type t = { round : int; node : Rsmr_net.Node_id.t }

let zero = { round = 0; node = -1 }

let compare a b =
  match Int.compare a.round b.round with
  | 0 -> Rsmr_net.Node_id.compare a.node b.node
  | c -> c

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let next b me = { round = b.round + 1; node = me }
let pp ppf b = Format.fprintf ppf "b%d.%a" b.round Rsmr_net.Node_id.pp b.node

let encode w b =
  Rsmr_app.Codec.Writer.varint w b.round;
  Rsmr_app.Codec.Writer.zigzag w b.node

let decode r =
  let round = Rsmr_app.Codec.Reader.varint r in
  let node = Rsmr_app.Codec.Reader.zigzag r in
  { round; node }
