lib/smr/paxos_block.ml: Msg Replica
