lib/smr/replica.ml: Ballot Config Format Hashtbl List Log Msg Params Printf Queue Rsmr_net Rsmr_sim
