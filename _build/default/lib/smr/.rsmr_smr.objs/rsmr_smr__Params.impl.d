lib/smr/params.ml: Format
