lib/smr/config.mli: Format Rsmr_app Rsmr_net
