lib/smr/params.mli: Format
