lib/smr/msg.mli: Ballot Format Log
