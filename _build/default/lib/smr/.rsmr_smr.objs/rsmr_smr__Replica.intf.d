lib/smr/replica.mli: Config Msg Params Rsmr_net Rsmr_sim
