lib/smr/msg.ml: Ballot Format List Log Rsmr_app String
