lib/smr/vr.ml: Array Config Hashtbl List Params Queue Rsmr_app Rsmr_net Rsmr_sim String
