lib/smr/ballot.ml: Format Int Rsmr_app Rsmr_net
