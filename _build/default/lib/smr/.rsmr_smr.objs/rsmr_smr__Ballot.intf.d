lib/smr/ballot.mli: Format Rsmr_app Rsmr_net
