lib/smr/paxos_block.mli: Block_intf
