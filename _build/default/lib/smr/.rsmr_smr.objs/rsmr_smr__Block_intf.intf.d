lib/smr/block_intf.mli: Config Params Rsmr_net Rsmr_sim
