lib/smr/log.mli: Ballot Format Rsmr_app
