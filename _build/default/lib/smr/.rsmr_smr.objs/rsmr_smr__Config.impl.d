lib/smr/config.ml: Format List Rsmr_app Rsmr_net
