lib/smr/vr.mli: Block_intf
