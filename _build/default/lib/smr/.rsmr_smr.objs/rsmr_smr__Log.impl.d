lib/smr/log.ml: Array Ballot Format Rsmr_app String
