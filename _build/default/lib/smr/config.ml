type t = { instance_id : int; members : Rsmr_net.Node_id.t list }

let make ~instance_id ~members =
  if members = [] then invalid_arg "Config.make: empty member set";
  let members = List.sort_uniq Rsmr_net.Node_id.compare members in
  { instance_id; members }

let size t = List.length t.members
let quorum t = (size t / 2) + 1
let is_member t n = List.exists (Rsmr_net.Node_id.equal n) t.members
let others t n = List.filter (fun m -> not (Rsmr_net.Node_id.equal m n)) t.members

let pp ppf t =
  Format.fprintf ppf "cfg#%d{%a}" t.instance_id
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Rsmr_net.Node_id.pp)
    t.members

let encode w t =
  Rsmr_app.Codec.Writer.varint w t.instance_id;
  Rsmr_app.Codec.Writer.list w Rsmr_app.Codec.Writer.zigzag t.members

let decode r =
  let instance_id = Rsmr_app.Codec.Reader.varint r in
  let members = Rsmr_app.Codec.Reader.list r Rsmr_app.Codec.Reader.zigzag in
  make ~instance_id ~members
