(** The static Multi-Paxos {!Replica}, packaged as a composition-ready
    building block. *)

include Block_intf.S
