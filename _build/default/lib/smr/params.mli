(** Timing parameters of the static SMR building block.  Defaults are tuned
    for the LAN latency model (sub-millisecond RTT). *)

type t = {
  heartbeat_interval : float;  (** leader heartbeat period, seconds *)
  election_timeout_min : float;
  election_timeout_max : float;
      (** follower election timeout is drawn uniformly from this range,
          Raft-style, to break dueling-proposer livelock *)
  resend_interval : float;     (** leader re-broadcast period for stuck slots *)
  learn_batch : int;           (** max entries per Learn response *)
  batch_delay : float;
      (** leader-side batching window: submissions are accumulated for this
          long (seconds) and proposed with a single [Accept_multi] per
          follower.  0 disables batching (one [Accept] broadcast per
          command). *)
  batch_max : int;  (** flush early at this many buffered commands *)
}

val with_batching : float -> t
(** [default] with the given batching window. *)

val default : t
val pp : Format.formatter -> t -> unit
