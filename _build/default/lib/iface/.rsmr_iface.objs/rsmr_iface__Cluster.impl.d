lib/iface/cluster.ml: Rsmr_net Rsmr_sim
