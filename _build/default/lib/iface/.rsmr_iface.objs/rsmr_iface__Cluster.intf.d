lib/iface/cluster.mli: Rsmr_net Rsmr_sim
