lib/core/directory.mli: Rsmr_net
