lib/core/session.mli: Rsmr_net
