lib/core/snapshot.mli:
