lib/core/service.ml: Array Directory Envelope Hashtbl Lazy List Option Options Rsmr_app Rsmr_client Rsmr_iface Rsmr_net Rsmr_sim Rsmr_smr Session Snapshot Wire
