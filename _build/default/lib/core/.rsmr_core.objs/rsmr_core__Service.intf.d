lib/core/service.mli: Options Rsmr_app Rsmr_iface Rsmr_net Rsmr_sim Rsmr_smr Wire
