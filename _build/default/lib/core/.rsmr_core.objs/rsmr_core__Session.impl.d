lib/core/session.ml: Int Map Option Rsmr_app Rsmr_net
