lib/core/wire.mli: Format Rsmr_client Rsmr_net
