lib/core/directory.ml: Rsmr_net
