lib/core/options.ml: Format
