lib/core/options.mli: Format
