lib/core/snapshot.ml: List Rsmr_app String
