lib/core/envelope.mli: Format Rsmr_net
