lib/core/wire.ml: Format Rsmr_app Rsmr_client Rsmr_net String
