lib/core/envelope.ml: Format Rsmr_app Rsmr_net String
