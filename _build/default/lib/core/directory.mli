(** The configuration directory: maps the (single, here) service to its
    freshest known configuration, so clients that lost track of the member
    set can recover.

    Runs on one dedicated simulated node.  The paper notes the directory
    itself can be replicated with the same machinery; a single node
    suffices here because only its lookup latency is observable in the
    experiments and it is never on any decision path. *)

type t

val create : unit -> t

val update :
  t -> epoch:int -> members:Rsmr_net.Node_id.t list ->
  leader:Rsmr_net.Node_id.t option -> unit
(** Monotone in [epoch]: stale updates are ignored; a same-epoch update may
    refresh the leader hint. *)

val epoch : t -> int
val members : t -> Rsmr_net.Node_id.t list
val leader : t -> Rsmr_net.Node_id.t option
