module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader
module Cmap = Rsmr_net.Node_id.Map
module Imap = Map.Make (Int)

(* Per client: [floor] = highest sequence known applied-and-acknowledged
   (its response has been dropped); [responses] = cached responses for
   sequences above the floor. *)
type entry = { floor : int; responses : string Imap.t }

type t = entry Cmap.t

let empty = Cmap.empty
let fresh = { floor = -1; responses = Imap.empty }

let check t ~client ~seq =
  match Cmap.find_opt client t with
  | None -> `New
  | Some e ->
    if seq <= e.floor then `Stale
    else (
      match Imap.find_opt seq e.responses with
      | Some rsp -> `Dup rsp
      | None -> `New)

let record t ~client ~seq ~rsp =
  let e = Option.value (Cmap.find_opt client t) ~default:fresh in
  Cmap.add client { e with responses = Imap.add seq rsp e.responses } t

let trim t ~client ~below =
  match Cmap.find_opt client t with
  | None -> t
  | Some e ->
    let floor = max e.floor (below - 1) in
    let _, _, above = Imap.split floor e.responses in
    Cmap.add client { floor; responses = above } t

let cardinal t = Cmap.fold (fun _ e acc -> acc + Imap.cardinal e.responses) t 0

let encode t =
  let w = W.create ~size_hint:256 () in
  W.varint w (Cmap.cardinal t);
  Cmap.iter
    (fun client e ->
      W.zigzag w client;
      W.zigzag w e.floor;
      W.varint w (Imap.cardinal e.responses);
      Imap.iter
        (fun seq rsp ->
          W.varint w seq;
          W.string w rsp)
        e.responses)
    t;
  W.contents w

let decode s =
  let r = R.of_string s in
  let nclients = R.varint r in
  let rec clients acc i =
    if i = nclients then acc
    else begin
      let client = R.zigzag r in
      let floor = R.zigzag r in
      let nresp = R.varint r in
      let rec resps m j =
        if j = nresp then m
        else
          let seq = R.varint r in
          let rsp = R.string r in
          resps (Imap.add seq rsp m) (j + 1)
      in
      clients (Cmap.add client { floor; responses = resps Imap.empty 0 } acc) (i + 1)
    end
  in
  clients Cmap.empty 0
