(** Composition-layer knobs — each one is an ablation axis in the
    evaluation. *)

type t = {
  speculative : bool;
      (** Paper's key optimization: boot the next configuration's SMR
          instance (and let it order commands) concurrently with state
          transfer; execution/replies still wait for the snapshot.  Off =
          the instance only starts once the snapshot is installed. *)
  residual_resubmit : bool;
      (** Re-submit commands the old instance ordered after its wedge point
          into the new instance (otherwise only client retries recover
          them). *)
  chunk_size : int;  (** state-transfer chunk bytes *)
  fetch_timeout : float;  (** retry period for snapshot fetches *)
}

val default : t
val pp : Format.formatter -> t -> unit
