module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type t = { app : string; sessions : string }

let encode t =
  let w = W.create ~size_hint:(String.length t.app + String.length t.sessions + 16) () in
  W.string w t.app;
  W.string w t.sessions;
  W.contents w

let decode s =
  let r = R.of_string s in
  let app = R.string r in
  let sessions = R.string r in
  { app; sessions }

let chunk s ~size =
  if size <= 0 then invalid_arg "Snapshot.chunk: size must be positive";
  let n = String.length s in
  if n = 0 then [ "" ]
  else
    let rec go off acc =
      if off >= n then List.rev acc
      else
        let len = min size (n - off) in
        go (off + len) (String.sub s off len :: acc)
    in
    go 0 []

let assemble = String.concat ""
