type t = {
  mutable epoch : int;
  mutable members : Rsmr_net.Node_id.t list;
  mutable leader : Rsmr_net.Node_id.t option;
}

let create () = { epoch = -1; members = []; leader = None }

let update t ~epoch ~members ~leader =
  if epoch > t.epoch then begin
    t.epoch <- epoch;
    t.members <- members;
    t.leader <- leader
  end
  else if epoch = t.epoch then
    match leader with Some _ -> t.leader <- leader | None -> ()

let epoch t = t.epoch
let members t = t.members
let leader t = t.leader
