lib/sim/heap.mli:
