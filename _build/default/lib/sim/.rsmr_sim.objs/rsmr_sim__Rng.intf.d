lib/sim/rng.mli:
