lib/sim/counters.ml: Format Hashtbl List String
