lib/sim/counters.mli: Format
