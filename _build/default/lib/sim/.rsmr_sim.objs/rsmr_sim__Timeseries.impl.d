lib/sim/timeseries.ml: Hashtbl List
