lib/sim/trace.ml: Format Hashtbl List
