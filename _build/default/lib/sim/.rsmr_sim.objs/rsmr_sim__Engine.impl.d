lib/sim/engine.ml: Heap Rng
