lib/sim/timeseries.mli:
