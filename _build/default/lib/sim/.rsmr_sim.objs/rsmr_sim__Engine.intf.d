lib/sim/engine.mli: Rng
