lib/sim/histogram.ml: Array Format
