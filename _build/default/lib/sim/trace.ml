type level = Debug | Info | Warn

type event = {
  time : float;
  node : int;
  topic : string;
  level : level;
  message : string;
}

type t = {
  mutable subscribers : (event -> unit) list;
  mutable retained : event list;  (* newest first *)
  mutable retain : bool;
  counts : (string, int ref) Hashtbl.t;
}

let create () =
  { subscribers = []; retained = []; retain = false; counts = Hashtbl.create 16 }

let emit t ~time ~node ~topic ?(level = Info) message =
  let ev = { time; node; topic; level; message } in
  (match Hashtbl.find_opt t.counts topic with
   | Some r -> incr r
   | None -> Hashtbl.add t.counts topic (ref 1));
  if t.retain then t.retained <- ev :: t.retained;
  List.iter (fun f -> f ev) (List.rev t.subscribers)

let subscribe t f = t.subscribers <- f :: t.subscribers
let keep t b = t.retain <- b
let events t = List.rev t.retained

let count t ~topic =
  match Hashtbl.find_opt t.counts topic with Some r -> !r | None -> 0

let pp_level ppf = function
  | Debug -> Format.pp_print_string ppf "debug"
  | Info -> Format.pp_print_string ppf "info"
  | Warn -> Format.pp_print_string ppf "warn"

let pp_event ppf ev =
  Format.fprintf ppf "[%.6f] n%d %s/%a: %s" ev.time ev.node ev.topic pp_level
    ev.level ev.message
