(** Log-bucketed latency histogram (HdrHistogram-style).

    Values are recorded in seconds; buckets are geometric with ~2% relative
    width, so percentile queries are accurate to a few percent across nine
    orders of magnitude — plenty for latency distributions. *)

type t

val create : unit -> t
val record : t -> float -> unit
val count : t -> int
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in (0, 100].  Returns 0. when empty. *)

val merge : t -> t -> t
(** Combine two histograms into a fresh one. *)

val clear : t -> unit

val pp_summary : Format.formatter -> t -> unit
(** One-line "n=.. mean=.. p50=.. p99=.. max=.." rendering in ms. *)
