type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }
let is_empty t = t.len = 0
let size t = t.len

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nd = Array.make ncap t.data.(0) in
  Array.blit t.data 0 nd 0 t.len;
  t.data <- nd

let push t ~time ~seq payload =
  let e = { time; seq; payload } in
  if t.len = 0 && Array.length t.data = 0 then t.data <- Array.make 16 e;
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- e;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  while !i > 0 && less t.data.(!i) t.data.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = t.data.(p) in
    t.data.(p) <- t.data.(!i);
    t.data.(!i) <- tmp;
    i := p
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
    if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.data.(!i) in
      t.data.(!i) <- t.data.(!smallest);
      t.data.(!smallest) <- tmp;
      i := !smallest
    end
  done

let pop t =
  if t.len = 0 then None
  else begin
    let e = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t
    end;
    Some (e.time, e.seq, e.payload)
  end

let peek t = if t.len = 0 then None else
  let e = t.data.(0) in
  Some (e.time, e.seq, e.payload)
