(** Append-only (time, value) series, with bucketed aggregation helpers used
    by the figure printers (e.g. throughput-per-interval, latency
    timelines). *)

type t

val create : unit -> t
val add : t -> time:float -> float -> unit
val length : t -> int
val points : t -> (float * float) list
(** Chronological samples. *)

val bucketize : t -> width:float -> (float * int * float) list
(** [bucketize t ~width] groups samples into intervals of [width] seconds,
    returning [(bucket_start, count, mean_value)] for each non-empty
    bucket, chronologically. *)

val rate_per_bucket : t -> width:float -> (float * float) list
(** Events per second in each bucket (using sample counts, ignoring
    values). *)

val max_in_window : t -> lo:float -> hi:float -> float option
(** Largest value with [lo <= time <= hi]. *)
