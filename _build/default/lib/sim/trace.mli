(** Structured trace bus.

    Protocol code publishes events; tests, invariant checkers and the
    history recorder subscribe.  Keeping the bus inside the simulator (as
    opposed to printing) lets checkers see exactly what happened in a run
    without parsing text. *)

type level = Debug | Info | Warn

type event = {
  time : float;
  node : int;          (** -1 when not attributable to a node *)
  topic : string;      (** e.g. "paxos", "reconfig", "net" *)
  level : level;
  message : string;
}

type t

val create : unit -> t

val emit : t -> time:float -> node:int -> topic:string -> ?level:level -> string -> unit

val subscribe : t -> (event -> unit) -> unit
(** Subscribers are invoked synchronously, in subscription order. *)

val keep : t -> bool -> unit
(** [keep t true] retains events in memory for later inspection (off by
    default, to keep long benchmark runs cheap). *)

val events : t -> event list
(** Retained events, oldest first. *)

val count : t -> topic:string -> int
(** Number of emitted events on [topic] (counted even when retention is
    off). *)

val pp_event : Format.formatter -> event -> unit
