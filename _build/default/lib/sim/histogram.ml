(* Buckets are geometric: bucket i covers [lo * g^i, lo * g^(i+1)) with
   g = 1.02.  lo = 1e-7 s; values below go to bucket 0, values above the top
   go to the last bucket. *)

let growth = 1.02
let lo = 1e-7
let nbuckets = 1200 (* lo * 1.02^1200 ~ 2.1e3 s *)
let log_growth = log growth

type t = {
  buckets : int array;
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let create () =
  { buckets = Array.make nbuckets 0; n = 0; sum = 0.0; minv = infinity; maxv = neg_infinity }

let bucket_of v =
  if v <= lo then 0
  else
    let i = int_of_float (log (v /. lo) /. log_growth) in
    if i >= nbuckets then nbuckets - 1 else i

let value_of i = lo *. (growth ** (float_of_int i +. 0.5))

let record t v =
  let v = if v < 0.0 then 0.0 else v in
  let i = bucket_of v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v < t.minv then t.minv <- v;
  if v > t.maxv then t.maxv <- v

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
let min_value t = if t.n = 0 then 0.0 else t.minv
let max_value t = if t.n = 0 then 0.0 else t.maxv

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let target =
      let x = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
      if x < 1 then 1 else if x > t.n then t.n else x
    in
    let acc = ref 0 and result = ref t.maxv and found = ref false in
    (try
       for i = 0 to nbuckets - 1 do
         acc := !acc + t.buckets.(i);
         if !acc >= target then begin
           result := value_of i;
           found := true;
           raise Exit
         end
       done
     with Exit -> ());
    if !found && !result > t.maxv then t.maxv else !result
  end

let merge a b =
  let t = create () in
  for i = 0 to nbuckets - 1 do
    t.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
  done;
  t.n <- a.n + b.n;
  t.sum <- a.sum +. b.sum;
  t.minv <- min a.minv b.minv;
  t.maxv <- max a.maxv b.maxv;
  t

let clear t =
  Array.fill t.buckets 0 nbuckets 0;
  t.n <- 0;
  t.sum <- 0.0;
  t.minv <- infinity;
  t.maxv <- neg_infinity

let pp_summary ppf t =
  if t.n = 0 then Format.pp_print_string ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.2fms p50=%.2fms p99=%.2fms max=%.2fms" t.n
      (mean t *. 1e3)
      (percentile t 50.0 *. 1e3)
      (percentile t 99.0 *. 1e3)
      (max_value t *. 1e3)
