(** Named integer counters for run-level accounting (messages sent, bytes
    transferred, commands committed, ...). *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
val to_list : t -> (string * int) list
(** Sorted by name. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
