type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let add t name n =
  match Hashtbl.find_opt t name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t name (ref n)

let incr t name = add t name 1
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset = Hashtbl.reset

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (k, v) -> Format.fprintf ppf "%s=%d" k v)
    ppf (to_list t)
