type t = { mutable rev_points : (float * float) list; mutable n : int }

let create () = { rev_points = []; n = 0 }

let add t ~time v =
  t.rev_points <- (time, v) :: t.rev_points;
  t.n <- t.n + 1

let length t = t.n
let points t = List.rev t.rev_points

let bucketize t ~width =
  if width <= 0.0 then invalid_arg "Timeseries.bucketize: width must be positive";
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (time, v) ->
      let b = int_of_float (floor (time /. width)) in
      match Hashtbl.find_opt tbl b with
      | Some (c, s) -> Hashtbl.replace tbl b (c + 1, s +. v)
      | None -> Hashtbl.add tbl b (1, v))
    t.rev_points;
  Hashtbl.fold (fun b (c, s) acc -> (b, c, s) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (b, c, s) ->
         (float_of_int b *. width, c, s /. float_of_int c))

let rate_per_bucket t ~width =
  bucketize t ~width
  |> List.map (fun (start, c, _) -> (start, float_of_int c /. width))

let max_in_window t ~lo ~hi =
  List.fold_left
    (fun acc (time, v) ->
      if time >= lo && time <= hi then
        match acc with Some m when m >= v -> acc | _ -> Some v
      else acc)
    None t.rev_points
