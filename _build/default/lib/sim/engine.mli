(** Deterministic discrete-event simulation engine.

    The engine owns virtual time (in seconds), an event queue, and the root
    random generator.  All protocol code runs inside event callbacks; a
    callback may schedule further events, send messages (via {!Rsmr_net}),
    and so on.  Execution is single-threaded and, for a fixed seed and
    program, bit-for-bit reproducible. *)

type t

type timer
(** Handle for a scheduled event, usable with {!cancel}. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes a fresh engine.  Default seed is 1. *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Rng.t
(** The engine's root generator.  Components should [Rng.split] it at
    construction time rather than drawing from it during the run. *)

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** [schedule t ~delay f] runs [f] at [now t +. max delay 0.]. *)

val at : t -> time:float -> (unit -> unit) -> timer
(** [at t ~time f] runs [f] at absolute virtual time [time] (clamped to
    be no earlier than [now t]). *)

val cancel : t -> timer -> unit
(** Cancel a pending event; cancelling a fired or cancelled timer is a
    no-op. *)

val is_pending : timer -> bool

val step : t -> bool
(** Execute the next event.  Returns [false] if the queue was empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue, stopping when it empties, when virtual time
    would exceed [until], or after [max_events] callbacks.  Events beyond
    [until] remain queued. *)

val events_executed : t -> int
(** Number of callbacks executed so far — a cheap determinism probe. *)
