(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every randomized component of the simulator owns its own generator,
    obtained by {!split}ting a parent.  Two runs from the same root seed
    therefore make identical random choices regardless of how components
    interleave their draws. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

val uniform_in : t -> float -> float -> float
(** [uniform_in t lo hi] draws uniformly from [lo, hi). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)
