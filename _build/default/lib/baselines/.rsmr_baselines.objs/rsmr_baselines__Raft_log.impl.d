lib/baselines/raft_log.ml: Array Rsmr_app Rsmr_net Stdlib
