lib/baselines/stop_the_world.ml: Rsmr_app Rsmr_core Rsmr_iface
