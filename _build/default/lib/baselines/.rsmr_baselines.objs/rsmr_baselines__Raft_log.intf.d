lib/baselines/raft_log.mli: Rsmr_app Rsmr_net
