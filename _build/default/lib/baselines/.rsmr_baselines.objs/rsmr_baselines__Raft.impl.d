lib/baselines/raft.ml: Buffer Hashtbl List Option Printf Raft_log Raft_msg Raft_wire Rsmr_app Rsmr_client Rsmr_core Rsmr_iface Rsmr_net Rsmr_sim Rsmr_smr String
