lib/baselines/raft_msg.mli: Format Raft_log Rsmr_net
