lib/baselines/raft_wire.ml: Raft_msg Rsmr_app Rsmr_client Rsmr_net String
