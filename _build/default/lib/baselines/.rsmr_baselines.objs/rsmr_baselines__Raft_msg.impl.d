lib/baselines/raft_msg.ml: Format List Raft_log Rsmr_app Rsmr_net String
