lib/baselines/raft_wire.mli: Raft_msg Rsmr_client Rsmr_net
