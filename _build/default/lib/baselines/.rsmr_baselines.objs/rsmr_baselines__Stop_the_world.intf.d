lib/baselines/stop_the_world.mli: Rsmr_app Rsmr_iface Rsmr_net Rsmr_sim Rsmr_smr
