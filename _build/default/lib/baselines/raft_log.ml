module W = Rsmr_app.Codec.Writer
module R = Rsmr_app.Codec.Reader

type payload =
  | Noop
  | App of {
      client : Rsmr_net.Node_id.t;
      seq : int;
      low_water : int;
      cmd : string;
    }
  | Config of Rsmr_net.Node_id.t list

type entry = { term : int; payload : payload }

type t = {
  mutable base_index : int;
  mutable base_term : int;
  mutable entries : entry array;
  mutable len : int;
}

let create () = { base_index = 0; base_term = 0; entries = [||]; len = 0 }
let base_index t = t.base_index
let base_term t = t.base_term
let last_index t = t.base_index + t.len

let nth t i = t.entries.(i - t.base_index - 1)

let last_term t = if t.len = 0 then t.base_term else (nth t (last_index t)).term

let term_at t i =
  if i = t.base_index then Some t.base_term
  else if i > t.base_index && i <= last_index t then Some (nth t i).term
  else None

let get t i =
  if i > t.base_index && i <= last_index t then Some (nth t i) else None

let ensure t n =
  let cap = Array.length t.entries in
  if n > cap then begin
    let ncap = max 64 (max n (cap * 2)) in
    let na = Array.make ncap { term = 0; payload = Noop } in
    Array.blit t.entries 0 na 0 t.len;
    t.entries <- na
  end

let append t e =
  ensure t (t.len + 1);
  t.entries.(t.len) <- e;
  t.len <- t.len + 1;
  last_index t

let truncate_from t i =
  if i <= t.base_index then
    invalid_arg "Raft_log.truncate_from: below snapshot base";
  let keep = i - t.base_index - 1 in
  if keep < t.len then t.len <- max keep 0

let compact_to t i =
  if i > t.base_index then begin
    let i = min i (last_index t) in
    (match term_at t i with
     | Some term ->
       let drop = i - t.base_index in
       let remaining = t.len - drop in
       if remaining > 0 then Array.blit t.entries drop t.entries 0 remaining;
       t.len <- remaining;
       t.base_index <- i;
       t.base_term <- term
     | None -> ())
  end

let reset_to t ~base_index ~base_term =
  t.base_index <- base_index;
  t.base_term <- base_term;
  t.len <- 0

let entries_from t i ~max =
  let lo = Stdlib.max i (t.base_index + 1) in
  let hi = Stdlib.min (last_index t) (lo + max - 1) in
  let acc = ref [] in
  for j = hi downto lo do
    acc := (j, nth t j) :: !acc
  done;
  !acc

let latest_config t =
  let rec scan i =
    if i <= t.base_index then None
    else
      match (nth t i).payload with
      | Config members -> Some members
      | Noop | App _ -> scan (i - 1)
  in
  scan (last_index t)

let encode_payload w = function
  | Noop -> W.u8 w 0
  | App { client; seq; low_water; cmd } ->
    W.u8 w 1;
    W.zigzag w client;
    W.varint w seq;
    W.varint w low_water;
    W.string w cmd
  | Config members ->
    W.u8 w 2;
    W.list w W.zigzag members

let decode_payload r =
  match R.u8 r with
  | 0 -> Noop
  | 1 ->
    let client = R.zigzag r in
    let seq = R.varint r in
    let low_water = R.varint r in
    App { client; seq; low_water; cmd = R.string r }
  | 2 -> Config (R.list r R.zigzag)
  | _ -> raise Rsmr_app.Codec.Truncated
