(** Concurrent operation histories, recorded from live runs and fed to the
    linearizability checker. *)

type op = {
  client : Rsmr_net.Node_id.t;
  cmd : string;        (** encoded command *)
  rsp : string;        (** encoded response *)
  invoked : float;
  replied : float;
}

type t

val create : unit -> t
val add : t -> op -> unit
val ops : t -> op list
(** In invocation order. *)

val length : t -> int

val concurrency : t -> int
(** Maximum number of operations whose [invoked, replied] intervals
    overlap — a sanity probe that a "concurrent" test actually was. *)
