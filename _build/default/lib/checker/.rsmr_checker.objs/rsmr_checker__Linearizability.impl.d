lib/checker/linearizability.ml: Array Bytes Format Hashtbl History Rsmr_app
