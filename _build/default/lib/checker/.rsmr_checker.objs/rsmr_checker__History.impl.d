lib/checker/history.ml: List Rsmr_net
