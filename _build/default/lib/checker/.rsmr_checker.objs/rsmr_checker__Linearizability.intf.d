lib/checker/linearizability.mli: Format History Rsmr_app
