lib/checker/history.mli: Rsmr_net
