module Make (Sm : Rsmr_app.State_machine.S) = struct
  type result = Linearizable | Not_linearizable | Inconclusive

  exception Found
  exception Budget

  let pp_result ppf = function
    | Linearizable -> Format.pp_print_string ppf "linearizable"
    | Not_linearizable -> Format.pp_print_string ppf "NOT linearizable"
    | Inconclusive -> Format.pp_print_string ppf "inconclusive (budget)"

  let check ?(max_states = 2_000_000) history =
    let ops = Array.of_list (History.ops history) in
    let n = Array.length ops in
    if n = 0 then Linearizable
    else begin
      let cmds = Array.map (fun (o : History.op) -> Sm.decode_command o.cmd) ops in
      let rsps = Array.map (fun (o : History.op) -> Sm.decode_response o.rsp) ops in
      (* Remaining set as a byte-per-op mask folded into the memo key. *)
      let remaining = Bytes.make n '\001' in
      let visited = Hashtbl.create 4096 in
      let budget = ref max_states in
      let rec search state =
        if !budget <= 0 then raise Budget;
        decr budget;
        let key = Bytes.to_string remaining ^ Sm.snapshot state in
        if not (Hashtbl.mem visited key) then begin
          Hashtbl.add visited key ();
          (* Earliest completion among pending ops bounds who can go first. *)
          let min_reply = ref infinity in
          let empty = ref true in
          for i = 0 to n - 1 do
            if Bytes.get remaining i = '\001' then begin
              empty := false;
              if ops.(i).History.replied < !min_reply then
                min_reply := ops.(i).History.replied
            end
          done;
          if !empty then raise Found;
          for i = 0 to n - 1 do
            if
              Bytes.get remaining i = '\001'
              && ops.(i).History.invoked <= !min_reply
            then begin
              let state', rsp = Sm.apply state cmds.(i) in
              if Sm.equal_response rsp rsps.(i) then begin
                Bytes.set remaining i '\000';
                search state';
                Bytes.set remaining i '\001'
              end
            end
          done
        end
      in
      try
        search (Sm.init ());
        Not_linearizable
      with
      | Found -> Linearizable
      | Budget -> Inconclusive
    end
end
