lib/client/endpoint.mli: Client_msg Rsmr_net Rsmr_sim
