lib/client/endpoint.ml: Client_msg Hashtbl List Rsmr_net Rsmr_sim
