lib/client/client_msg.ml: Format List Rsmr_app Rsmr_net String
