lib/client/client_msg.mli: Format Rsmr_net
