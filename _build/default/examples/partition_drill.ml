(* Partition drill: a network partition isolates the leader's minority; the
   majority side elects a new leader inside the SAME static configuration
   (no reconfiguration needed — that is the building block's job).  After
   healing, operations reconfigure away from the flaky node entirely.

     dune exec examples/partition_drill.exe *)

module Engine = Rsmr_sim.Engine
module Network = Rsmr_net.Network
module Service = Rsmr_core.Service.Make (Rsmr_app.Kv)
module Kv = Rsmr_app.Kv
module Driver = Rsmr_workload.Driver
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen
module Schedule = Rsmr_workload.Schedule

let () =
  let engine = Engine.create ~seed:5 () in
  let service =
    Service.create ~engine ~members:[ 0; 1; 2; 3; 4 ]
      ~universe:[ 0; 1; 2; 3; 4; 5 ] ()
  in
  let cluster = Service.cluster service in
  let net = Service.net service in

  Driver.preload ~cluster ~client:99
    ~commands:(Kv_gen.preload_commands ~n_keys:1_000 ~value_size:64)
    ~deadline:60.0 ();
  let t0 = Engine.now engine in
  let rng = Rsmr_sim.Rng.split (Engine.rng engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.uniform ~n:1_000) ~read_ratio:0.5 () in
  let stats =
    Driver.run_closed ~cluster ~n_clients:4 ~first_client_id:100
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~start:(t0 +. 0.5) ~duration:12.0 ()
  in

  (* At t=+2: cut the current leader plus one follower off from the rest.
     The majority (3 of 5) keeps the service alive. *)
  Schedule.at cluster ~time:(t0 +. 2.0) (fun () ->
      match Service.current_leader service with
      | Some leader ->
        let other = if leader = 0 then 1 else 0 in
        let minority = [ leader; other ] in
        let majority =
          List.filter (fun n -> not (List.mem n minority)) [ 0; 1; 2; 3; 4; 5 ]
        in
        Printf.printf "t=+2.0 partition: minority {%s} cut off\n"
          (String.concat "," (List.map string_of_int minority));
        Network.partition net [ minority; majority ]
      | None -> print_endline "t=+2.0 no leader to isolate!?");
  (* t=+5: heal. *)
  Schedule.at cluster ~time:(t0 +. 5.0) (fun () ->
      print_endline "t=+5.0 partition healed";
      Network.heal net);
  (* t=+6: ops replace node 0 (deemed flaky) with the spare node 5. *)
  Schedule.reconfigure_at cluster ~time:(t0 +. 6.0) [ 1; 2; 3; 4; 5 ];
  Engine.run ~until:(t0 +. 16.0) engine;

  Printf.printf "\nthroughput per second of the drill:\n";
  List.iter
    (fun (start, rate) ->
      Printf.printf "  t=+%4.1fs  %5.0f txn/s%s\n" (start -. t0) rate
        (if start -. t0 >= 2.0 && start -. t0 < 3.0 then "   <- partition hits"
         else if start -. t0 >= 5.0 && start -. t0 < 6.0 then "   <- healed"
         else if start -. t0 >= 6.0 && start -. t0 < 7.0 then "   <- reconfigure away from flaky node"
         else "")
    )
    (Rsmr_sim.Timeseries.rate_per_bucket stats.Driver.completions ~width:1.0);
  Printf.printf "\nfinal members {%s}, total completed %d\n"
    (String.concat "," (List.map string_of_int (Service.current_members service)))
    stats.Driver.completed;
  assert (Service.current_members service = [ 1; 2; 3; 4; 5 ])
