examples/quickstart.mli:
