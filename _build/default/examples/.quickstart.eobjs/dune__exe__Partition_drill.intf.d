examples/partition_drill.mli:
