examples/rolling_upgrade.ml: Format List Printf Rsmr_app Rsmr_core Rsmr_sim Rsmr_workload String
