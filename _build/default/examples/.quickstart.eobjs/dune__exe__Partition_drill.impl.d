examples/partition_drill.ml: List Printf Rsmr_app Rsmr_core Rsmr_net Rsmr_sim Rsmr_workload String
