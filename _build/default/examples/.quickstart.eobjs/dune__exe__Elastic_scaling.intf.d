examples/elastic_scaling.mli:
