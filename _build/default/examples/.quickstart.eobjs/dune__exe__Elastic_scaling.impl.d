examples/elastic_scaling.ml: Format Fun List Printf Rsmr_app Rsmr_core Rsmr_sim Rsmr_workload String
