examples/quickstart.ml: Hashtbl List Printf Rsmr_app Rsmr_core Rsmr_iface Rsmr_sim String
