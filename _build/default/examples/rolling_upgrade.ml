(* Rolling upgrade: replace every replica of a live KV service, one at a
   time, under continuous client load — the bread-and-butter operation the
   paper's composition makes cheap.

     dune exec examples/rolling_upgrade.exe

   Prints the per-step client-visible impact (throughput dip, worst
   latency) for each single-replica replacement. *)

module Engine = Rsmr_sim.Engine
module Histogram = Rsmr_sim.Histogram
module Service = Rsmr_core.Service.Make (Rsmr_app.Kv)
module Driver = Rsmr_workload.Driver
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen
module Schedule = Rsmr_workload.Schedule

let () =
  let engine = Engine.create ~seed:7 () in
  let service =
    Service.create ~engine ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3; 4; 5 ]
      ()
  in
  let cluster = Service.cluster service in

  print_endline "Preloading 5k keys...";
  Driver.preload ~cluster ~client:99
    ~commands:(Kv_gen.preload_commands ~n_keys:5_000 ~value_size:100)
    ~deadline:120.0 ();
  let t0 = Engine.now engine in

  let rng = Rsmr_sim.Rng.split (Engine.rng engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.uniform ~n:5_000) ~read_ratio:0.7 () in
  let stats =
    Driver.run_closed ~cluster ~n_clients:8 ~first_client_id:100
      ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
      ~start:(t0 +. 0.5) ~duration:16.0 ()
  in

  (* Upgrade plan: replace one replica every 4 seconds.
     {0,1,2} -> {1,2,3} -> {2,3,4} -> {3,4,5} *)
  let steps = [ (2.0, [ 1; 2; 3 ]); (6.0, [ 2; 3; 4 ]); (10.0, [ 3; 4; 5 ]) ] in
  List.iter
    (fun (dt, members) ->
      Schedule.reconfigure_at cluster ~time:(t0 +. dt) members)
    steps;
  Engine.run ~until:(t0 +. 25.0) engine;

  Printf.printf "\n%-28s %-12s %-12s\n" "window" "txn/s" "max latency";
  let window lo hi label =
    let count =
      List.fold_left
        (fun acc (time, _) ->
          if time >= t0 +. lo && time < t0 +. hi then acc + 1 else acc)
        0
        (Rsmr_sim.Timeseries.points stats.Driver.completions)
    in
    let worst =
      match
        Rsmr_sim.Timeseries.max_in_window stats.Driver.completions
          ~lo:(t0 +. lo) ~hi:(t0 +. hi)
      with
      | Some v -> Printf.sprintf "%.1fms" (v *. 1e3)
      | None -> "outage"
    in
    Printf.printf "%-28s %-12.0f %-12s\n" label
      (float_of_int count /. (hi -. lo))
      worst
  in
  window 0.5 2.0 "steady (before)";
  window 2.0 4.0 "step 1: 0 out, 3 in";
  window 4.0 6.0 "settle";
  window 6.0 8.0 "step 2: 1 out, 4 in";
  window 8.0 10.0 "settle";
  window 10.0 12.0 "step 3: 2 out, 5 in";
  window 12.0 16.0 "steady (after)";

  Printf.printf "\nFinal epoch %d, members {%s}; overall latency %s\n"
    (Service.current_epoch service)
    (String.concat "," (List.map string_of_int (Service.current_members service)))
    (Format.asprintf "%a" Histogram.pp_summary stats.Driver.latency);
  (* Each step only touches one replica, so the incoming node installs its
     snapshot from a colocated majority: the dips above should be mild. *)
  assert (Service.current_members service = [ 3; 4; 5 ])
