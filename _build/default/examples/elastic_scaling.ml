(* Elastic scaling: grow the replica set when load arrives, shrink it when
   load subsides — the FRAPPE use case that motivated building
   reconfiguration from static building blocks.

     dune exec examples/elastic_scaling.exe

   (Scaling a majority-quorum system out does not increase write
   throughput — it increases fault tolerance and read capacity; the point
   here is that the service absorbs repeated reconfigurations while
   serving.) *)

module Engine = Rsmr_sim.Engine
module Histogram = Rsmr_sim.Histogram
module Service = Rsmr_core.Service.Make (Rsmr_app.Kv)
module Driver = Rsmr_workload.Driver
module Keys = Rsmr_workload.Keys
module Kv_gen = Rsmr_workload.Kv_gen
module Schedule = Rsmr_workload.Schedule

let () =
  let engine = Engine.create ~seed:99 () in
  let universe = List.init 7 Fun.id in
  let service = Service.create ~engine ~members:[ 0; 1; 2 ] ~universe () in
  let cluster = Service.cluster service in

  Driver.preload ~cluster ~client:99
    ~commands:(Kv_gen.preload_commands ~n_keys:2_000 ~value_size:64)
    ~deadline:60.0 ();
  let t0 = Engine.now engine in

  let rng = Rsmr_sim.Rng.split (Engine.rng engine) in
  let gen = Kv_gen.create ~rng ~keys:(Keys.zipf ~n:2_000 ~theta:0.9) ~read_ratio:0.9 () in
  (* Ops reaction is scheduled up front: scale out for the burst, scale
     back after. *)
  Schedule.reconfigure_at cluster ~time:(t0 +. 4.0) [ 0; 1; 2; 3; 4 ];
  Schedule.reconfigure_at cluster ~time:(t0 +. 9.0) [ 2; 3; 4 ];
  (* A driver owns the cluster's reply slot, so phases run back-to-back:
     each is created when the previous one has drained. *)
  let phase ~rate ~start ~duration =
    let stats =
      Driver.run_open ~cluster ~n_clients:8 ~first_client_id:100
        ~gen:(fun ~client:_ ~seq:_ -> Kv_gen.next gen)
        ~rate ~start:(t0 +. start) ~duration ()
    in
    Engine.run ~until:(t0 +. start +. duration +. 0.4) engine;
    stats
  in
  let calm1 = phase ~rate:300.0 ~start:0.5 ~duration:3.5 in
  let burst = phase ~rate:1500.0 ~start:4.5 ~duration:4.0 in
  let calm2 = phase ~rate:300.0 ~start:9.0 ~duration:4.0 in
  Engine.run ~until:(t0 +. 20.0) engine;

  let report name (stats : Driver.stats) =
    Printf.printf "%-24s %6d done  %s\n" name stats.Driver.completed
      (Format.asprintf "%a" Histogram.pp_summary stats.Driver.latency)
  in
  Printf.printf "\nphase                    completions / latency\n";
  report "calm (3 replicas)" calm1;
  report "burst (scaled to 5)" burst;
  report "calm (shrunk to 3)" calm2;
  Printf.printf "\nfinal members {%s}, epoch %d, reconfigs absorbed: %d\n"
    (String.concat "," (List.map string_of_int (Service.current_members service)))
    (Service.current_epoch service)
    (Service.current_epoch service);
  assert (Service.current_members service = [ 2; 3; 4 ])
