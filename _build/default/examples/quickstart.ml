(* Quickstart: a replicated counter that survives a full change of its
   replica set.

     dune exec examples/quickstart.exe

   Walks through the whole public API surface: build a service over a
   simulated network, attach a client, run commands, reconfigure, and
   verify the state crossed the configuration change. *)

module Engine = Rsmr_sim.Engine
module Counter = Rsmr_app.Counter
module Service = Rsmr_core.Service.Make (Rsmr_app.Counter)

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n")

let () =
  step "1. Create a deterministic simulation and a 3-replica service";
  let engine = Engine.create ~seed:2024 () in
  (* [universe] lists every node that may ever host a replica; nodes 3-5
     start as idle spares. *)
  let service =
    Service.create ~engine ~members:[ 0; 1; 2 ] ~universe:[ 0; 1; 2; 3; 4; 5 ] ()
  in
  let cluster = Service.cluster service in

  step "2. Attach a client and collect replies";
  let client = 100 in
  cluster.Rsmr_iface.Cluster.add_client client;
  let replies = Hashtbl.create 8 in
  cluster.Rsmr_iface.Cluster.set_on_reply (fun ~client:_ ~seq ~rsp ->
      Hashtbl.replace replies seq (Counter.decode_response rsp));
  let submit seq cmd =
    cluster.Rsmr_iface.Cluster.submit ~client ~seq
      ~cmd:(Counter.encode_command cmd)
  in
  let await seq =
    let rec wait horizon =
      Engine.run ~until:horizon engine;
      match Hashtbl.find_opt replies seq with
      | Some (Counter.Current v) -> v
      | None -> wait (horizon +. 0.1)
    in
    wait (Engine.now engine +. 0.1)
  in

  step "3. Run some commands through the replicated counter";
  submit 1 (Counter.Incr 40);
  Printf.printf "   incr 40 -> %d\n" (await 1);
  submit 2 (Counter.Incr 2);
  Printf.printf "   incr 2  -> %d\n" (await 2);

  step "4. Replace the entire fleet: {0,1,2} -> {3,4,5}";
  Printf.printf "   epoch before: %d, members: %s\n"
    (Service.current_epoch service)
    (String.concat "," (List.map string_of_int (Service.current_members service)));
  cluster.Rsmr_iface.Cluster.reconfigure [ 3; 4; 5 ];
  let rec wait_epoch horizon =
    Engine.run ~until:horizon engine;
    if Service.current_epoch service < 1 then wait_epoch (horizon +. 0.1)
  in
  wait_epoch (Engine.now engine +. 0.1);
  Printf.printf "   epoch after:  %d, members: %s\n"
    (Service.current_epoch service)
    (String.concat "," (List.map string_of_int (Service.current_members service)));

  step "5. The state survived the transfer — keep counting on new replicas";
  submit 3 (Counter.Incr 0);
  Printf.printf "   read    -> %d (expected 42)\n" (await 3);
  submit 4 (Counter.Incr 58);
  Printf.printf "   incr 58 -> %d (expected 100)\n" (await 4);

  step "6. Retries are harmless: at-most-once via client sessions";
  submit 4 (Counter.Incr 58) (* duplicate of seq 4: deduplicated *);
  submit 5 Counter.Read;
  Printf.printf "   read after duplicate submit -> %d (still 100)\n" (await 5);

  let wedges =
    Rsmr_sim.Counters.get (Service.counters service) "wedges"
  in
  Printf.printf
    "\nDone: one reconfiguration (wedged %d old-instance replicas), state \
     carried over, exactly-once preserved.\n"
    wedges
